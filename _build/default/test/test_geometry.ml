module Point = Geometry.Point
module Pred = Geometry.Predicates
module Exp = Geometry.Expansion

let p = Point.make
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_orient_basic () =
  check_int "ccw" 1 (Pred.orient2d (p 0. 0.) (p 1. 0.) (p 0. 1.));
  check_int "cw" (-1) (Pred.orient2d (p 0. 0.) (p 0. 1.) (p 1. 0.));
  check_int "collinear" 0 (Pred.orient2d (p 0. 0.) (p 1. 1.) (p 2. 2.))

let test_orient_near_degenerate () =
  (* Points nearly collinear, differing by one ulp: the filter fails and
     the exact path must get the sign right. *)
  let base = 0.5 in
  let eps = ldexp 1.0 (-52) in
  let a = p 0.0 0.0 and b = p 1.0 base in
  let on_line = p 2.0 (2.0 *. base) in
  check_int "exactly on line" 0 (Pred.orient2d a b on_line);
  let above = p 2.0 ((2.0 *. base) +. (2.0 *. eps)) in
  check_int "one ulp above" 1 (Pred.orient2d a b above);
  let below = p 2.0 ((2.0 *. base) -. (2.0 *. eps)) in
  check_int "one ulp below" (-1) (Pred.orient2d a b below)

let test_incircle_basic () =
  let a = p 0. 0. and b = p 1. 0. and c = p 0. 1. in
  check_int "center inside" 1 (Pred.incircle a b c (p 0.3 0.3));
  check_int "far point outside" (-1) (Pred.incircle a b c (p 5. 5.));
  (* (1,1) lies exactly on the circumcircle of the unit right triangle. *)
  check_int "cocircular" 0 (Pred.incircle a b c (p 1. 1.))

let test_incircle_near_degenerate () =
  let a = p 0. 0. and b = p 1. 0. and c = p 0. 1. in
  let eps = ldexp 1.0 (-50) in
  check_int "just inside" 1 (Pred.incircle a b c (p (1.0 -. eps) 1.0));
  check_int "just outside" (-1) (Pred.incircle a b c (p (1.0 +. eps) 1.0))

let test_circumcenter () =
  let a = p 0. 0. and b = p 2. 0. and c = p 0. 2. in
  (match Pred.circumcenter a b c with
  | Some cc ->
      Alcotest.(check (float 1e-12)) "x" 1.0 cc.Point.x;
      Alcotest.(check (float 1e-12)) "y" 1.0 cc.Point.y
  | None -> Alcotest.fail "unexpected degenerate");
  match Pred.circumcenter a b (p 4. 0.) with
  | None -> ()
  | Some _ -> Alcotest.fail "collinear points should have no circumcenter"

let test_in_triangle () =
  let a = p 0. 0. and b = p 4. 0. and c = p 0. 4. in
  check_bool "interior" true (Pred.in_triangle a b c (p 1. 1.));
  check_bool "vertex" true (Pred.in_triangle a b c a);
  check_bool "edge" true (Pred.in_triangle a b c (p 2. 0.));
  check_bool "outside" false (Pred.in_triangle a b c (p 3. 3.))

let test_min_angle () =
  (* Equilateral: 60 degrees everywhere. *)
  let a = p 0. 0. and b = p 1. 0. and c = p 0.5 (sqrt 3.0 /. 2.0) in
  Alcotest.(check (float 1e-6)) "equilateral" 60.0 (Pred.min_angle_deg a b c);
  (* Right isoceles: 45. *)
  Alcotest.(check (float 1e-6)) "right isoceles" 45.0
    (Pred.min_angle_deg (p 0. 0.) (p 1. 0.) (p 0. 1.))

let test_expansion_two_sum () =
  let x, e = Exp.two_sum 1.0 (ldexp 1.0 (-60)) in
  check_bool "rounding captured" true (e <> 0.0 || x = 1.0 +. ldexp 1.0 (-60));
  Alcotest.(check (float 0.0)) "exactness" (1.0 +. ldexp 1.0 (-60)) (x +. e)

let test_expansion_sign () =
  let a = Exp.of_float 1.0 in
  let tiny = Exp.of_float (ldexp 1.0 (-200)) in
  check_int "positive" 1 (Exp.sign (Exp.add a tiny));
  check_int "negative" (-1) (Exp.sign (Exp.sub tiny a));
  check_int "zero" 0 (Exp.sign (Exp.sub a a));
  (* 1 + tiny - 1 = tiny: catastrophic cancellation handled exactly. *)
  check_int "cancellation" 1 (Exp.sign (Exp.sub (Exp.add a tiny) a))

(* Property: expansion arithmetic on smallish integers agrees with exact
   integer arithmetic. *)
let prop_expansion_integer_model =
  QCheck.Test.make ~name:"expansions model exact integer arithmetic" ~count:300
    QCheck.(quad (int_range (-1000) 1000) (int_range (-1000) 1000) (int_range (-1000) 1000)
              (int_range (-1000) 1000))
    (fun (a, b, c, d) ->
      (* sign (a*b - c*d) exactly *)
      let ea = Exp.of_float (float_of_int a) and eb = Exp.of_float (float_of_int b) in
      let ec = Exp.of_float (float_of_int c) and ed = Exp.of_float (float_of_int d) in
      let s = Exp.sign (Exp.sub (Exp.mul ea eb) (Exp.mul ec ed)) in
      s = compare (a * b) (c * d))

(* Property: orient2d is antisymmetric and invariant under rotation of
   its arguments. *)
let prop_orient_symmetries =
  QCheck.Test.make ~name:"orient2d symmetries" ~count:300
    QCheck.(triple (pair (float_range (-10.) 10.) (float_range (-10.) 10.))
              (pair (float_range (-10.) 10.) (float_range (-10.) 10.))
              (pair (float_range (-10.) 10.) (float_range (-10.) 10.)))
    (fun ((ax, ay), (bx, by), (cx, cy)) ->
      let a = p ax ay and b = p bx by and c = p cx cy in
      let s = Pred.orient2d a b c in
      Pred.orient2d b c a = s && Pred.orient2d c a b = s && Pred.orient2d a c b = -s)

(* Property: incircle result is invariant under cyclic rotation. *)
let prop_incircle_rotation =
  QCheck.Test.make ~name:"incircle cyclic invariance" ~count:200
    QCheck.(quad (pair (float_range 0. 1.) (float_range 0. 1.))
              (pair (float_range 0. 1.) (float_range 0. 1.))
              (pair (float_range 0. 1.) (float_range 0. 1.))
              (pair (float_range 0. 1.) (float_range 0. 1.)))
    (fun ((ax, ay), (bx, by), (cx, cy), (dx, dy)) ->
      let a = p ax ay and b = p bx by and c = p cx cy and d = p dx dy in
      QCheck.assume (Pred.orient2d a b c > 0);
      let s = Pred.incircle a b c d in
      Pred.incircle b c a d = s && Pred.incircle c a b d = s)

let test_random_points_deterministic () =
  let a = Point.random_unit_square ~seed:9 100 in
  let b = Point.random_unit_square ~seed:9 100 in
  check_bool "same points" true (a = b);
  check_bool "in unit square" true
    (Array.for_all (fun q -> q.Point.x >= 0.0 && q.Point.x < 1.0 && q.Point.y >= 0.0 && q.Point.y < 1.0) a)

let suite =
  [
    Alcotest.test_case "orient2d basics" `Quick test_orient_basic;
    Alcotest.test_case "orient2d near-degenerate exactness" `Quick test_orient_near_degenerate;
    Alcotest.test_case "incircle basics" `Quick test_incircle_basic;
    Alcotest.test_case "incircle near-degenerate exactness" `Quick test_incircle_near_degenerate;
    Alcotest.test_case "circumcenter" `Quick test_circumcenter;
    Alcotest.test_case "in_triangle" `Quick test_in_triangle;
    Alcotest.test_case "min angle" `Quick test_min_angle;
    Alcotest.test_case "two_sum exactness" `Quick test_expansion_two_sum;
    Alcotest.test_case "expansion signs" `Quick test_expansion_sign;
    QCheck_alcotest.to_alcotest prop_expansion_integer_model;
    QCheck_alcotest.to_alcotest prop_orient_symmetries;
    QCheck_alcotest.to_alcotest prop_incircle_rotation;
    Alcotest.test_case "random points deterministic" `Quick test_random_points_deterministic;
  ]
