let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_fresh_lock_free () =
  let l = Galois.Lock.create () in
  check_int "mark is 0" 0 (Galois.Lock.mark l)

let test_ids_unique () =
  let locks = Galois.Lock.create_array 100 in
  let ids = Array.map Galois.Lock.id locks in
  let sorted = Array.copy ids in
  Array.sort compare sorted;
  for i = 1 to 99 do
    if sorted.(i) = sorted.(i - 1) then Alcotest.fail "duplicate lock id"
  done

let test_try_claim () =
  let l = Galois.Lock.create () in
  check_bool "first claim wins" true (Galois.Lock.try_claim l 3);
  check_bool "re-claim by owner" true (Galois.Lock.try_claim l 3);
  check_bool "other task loses" false (Galois.Lock.try_claim l 4);
  Galois.Lock.release l 3;
  check_bool "free after release" true (Galois.Lock.try_claim l 4)

let test_release_only_owner () =
  let l = Galois.Lock.create () in
  ignore (Galois.Lock.try_claim l 5);
  Galois.Lock.release l 9;
  check_int "non-owner release is a no-op" 5 (Galois.Lock.mark l);
  Galois.Lock.release l 5;
  check_int "owner release frees" 0 (Galois.Lock.mark l)

let test_claim_max_monotone () =
  let l = Galois.Lock.create () in
  (match Galois.Lock.claim_max l 5 with
  | `Won 0 -> ()
  | _ -> Alcotest.fail "claiming a free lock should win with no victim");
  (match Galois.Lock.claim_max l 9 with
  | `Won 5 -> ()
  | _ -> Alcotest.fail "higher id should displace 5");
  (match Galois.Lock.claim_max l 7 with
  | `Lost -> ()
  | _ -> Alcotest.fail "lower id must lose");
  check_int "mark is max" 9 (Galois.Lock.mark l);
  match Galois.Lock.claim_max l 9 with
  | `Won 0 -> ()
  | _ -> Alcotest.fail "re-claim by current owner wins without victim"

let test_claim_max_concurrent_is_max () =
  (* The paper's determinism hinges on writeMarksMax being
     order-insensitive: the final mark is the max id no matter the
     interleaving. Hammer one lock from several domains. *)
  let l = Galois.Lock.create () in
  let ids = Array.init 64 (fun i -> i + 1) in
  Parallel.Domain_pool.with_pool 4 (fun pool ->
      Parallel.Domain_pool.parallel_for pool 0 64 (fun i ->
          ignore (Galois.Lock.claim_max l ids.(i))));
  check_int "final mark is the max id" 64 (Galois.Lock.mark l)

let test_claim_max_loser_reported_exactly_once () =
  (* Every displaced id is reported exactly once across all claimants,
     and `Lost happens exactly for claims that observe a higher mark.
     With sequential claims in random order, the set of reported victims
     must be all ids except the max. *)
  let ids = [ 13; 2; 40; 7; 21; 40000; 5 ] in
  let l = Galois.Lock.create () in
  let victims = ref [] and losses = ref 0 in
  List.iter
    (fun id ->
      match Galois.Lock.claim_max l id with
      | `Won 0 -> ()
      | `Won v -> victims := v :: !victims
      | `Lost -> incr losses)
    ids;
  let expected_victims = List.sort compare [ 13; 2; 7; 21 ] in
  (* 2 displaced by 13? order: 13 free->Won 0; 2 -> Lost; 40 -> Won 13;
     7 -> Lost; 21 -> Lost; 40000 -> Won 40; 5 -> Lost. *)
  ignore expected_victims;
  Alcotest.(check (list int)) "victims" [ 40; 13 ] !victims;
  check_int "losses" 4 !losses;
  check_int "final mark" 40000 (Galois.Lock.mark l)

let test_force_clear () =
  let l = Galois.Lock.create () in
  ignore (Galois.Lock.try_claim l 77);
  Galois.Lock.force_clear l;
  check_int "cleared" 0 (Galois.Lock.mark l)

let test_holds () =
  let l = Galois.Lock.create () in
  check_bool "nobody holds fresh lock" false (Galois.Lock.holds l 1);
  ignore (Galois.Lock.try_claim l 1);
  check_bool "owner holds" true (Galois.Lock.holds l 1);
  check_bool "other does not" false (Galois.Lock.holds l 2)

(* Property: for any sequence of claim_max operations, the final mark is
   the maximum id claimed. *)
let prop_claim_max_commutes =
  QCheck.Test.make ~name:"claim_max final mark = max of ids" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 50) (int_range 1 1_000_000))
    (fun ids ->
      QCheck.assume (ids <> []);
      let l = Galois.Lock.create () in
      List.iter (fun id -> ignore (Galois.Lock.claim_max l id)) ids;
      Galois.Lock.mark l = List.fold_left max 0 ids)

let suite =
  [
    Alcotest.test_case "fresh lock is free" `Quick test_fresh_lock_free;
    Alcotest.test_case "lock ids unique" `Quick test_ids_unique;
    Alcotest.test_case "try_claim semantics" `Quick test_try_claim;
    Alcotest.test_case "release only by owner" `Quick test_release_only_owner;
    Alcotest.test_case "claim_max is monotone max" `Quick test_claim_max_monotone;
    Alcotest.test_case "claim_max under contention yields max" `Quick
      test_claim_max_concurrent_is_max;
    Alcotest.test_case "claim_max reports victims once" `Quick
      test_claim_max_loser_reported_exactly_once;
    Alcotest.test_case "force_clear" `Quick test_force_clear;
    Alcotest.test_case "holds" `Quick test_holds;
    QCheck_alcotest.to_alcotest prop_claim_max_commutes;
  ]
