(* End-to-end check of the figure harness at tiny scale: every figure
   renders, with the structurally expected rows, and key shape
   properties of the reproduction hold. *)

let data = lazy (Figures.Dataset.collect Figures.Scale.tiny)

let timings () = Figures.timings (Lazy.force data)

let test_dataset_complete () =
  let d = Lazy.force data in
  Alcotest.(check int) "five applications" 5 (List.length d.Figures.Dataset.apps);
  Alcotest.(check int) "three kernels" 3 (List.length d.kernels);
  List.iter
    (fun (app : Figures.Dataset.app) ->
      Alcotest.(check bool) (app.name ^ " has schedules") true
        (app.serial.schedule <> None && app.nondet.schedule <> None && app.det.schedule <> None))
    d.Figures.Dataset.apps

let test_all_figures_render () =
  let t = timings () in
  List.iter
    (fun (name, _, f) ->
      match f () with
      | _table -> ()
      | exception e ->
          Alcotest.failf "figure %s raised %s" name (Printexc.to_string e))
    (Figures.all_figures t)

let test_headline_shape () =
  (* The qualitative result of the paper must hold: non-deterministic
     beats handwritten deterministic beats generic deterministic, at max
     threads on m4x10 (medians across benchmarks). *)
  let t = timings () in
  let d = Lazy.force data in
  let m = Figures.Machine.m4x10 in
  List.iter
    (fun (app : Figures.Dataset.app) ->
      let tn = Figures.cell t m ~threads:40 app Figures.GN in
      let td = Figures.cell t m ~threads:40 app Figures.GD in
      if not (tn < td) then Alcotest.failf "%s: nondet (%g) not faster than det (%g)" app.name tn td)
    d.Figures.Dataset.apps

let test_det_slower_at_one_thread_than_serial () =
  let t = timings () in
  let d = Lazy.force data in
  let m = Figures.Machine.m4x10 in
  List.iter
    (fun (app : Figures.Dataset.app) ->
      let speedup1 = Figures.speedup t m ~threads:1 app Figures.GD in
      if speedup1 >= 1.0 then
        Alcotest.failf "%s: deterministic execution at 1 thread beats the sequential baseline"
          app.name)
    d.Figures.Dataset.apps

let test_coredet_contrast_in_fig6 () =
  let t = timings () in
  let workloads = Figures.fig6_workloads t in
  let slow name =
    let _, work, atomics = List.find (fun (n, _, _) -> n = name) workloads in
    Figures.Coredet_model.slowdown Figures.Machine.m4x10 ~threads:40 ~work ~atomics ()
  in
  Alcotest.(check bool) "blackscholes mild" true (slow "blackscholes" < 5.0);
  Alcotest.(check bool) "bfs heavy" true (slow "bfs" > 5.0);
  Alcotest.(check bool) "dmr heavy" true (slow "dmr" > 5.0)

let test_print_figure_unknown () =
  let t = timings () in
  match Figures.print_figure t "fig99" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unknown figure accepted"

let suite =
  [
    Alcotest.test_case "dataset is complete" `Slow test_dataset_complete;
    Alcotest.test_case "all figures render" `Slow test_all_figures_render;
    Alcotest.test_case "headline shape: g-n < g-d in time" `Slow test_headline_shape;
    Alcotest.test_case "det pays overhead at one thread" `Slow
      test_det_slower_at_one_thread_than_serial;
    Alcotest.test_case "coredet contrast" `Slow test_coredet_contrast_in_fig6;
    Alcotest.test_case "unknown figure rejected" `Slow test_print_figure_unknown;
  ]
