module Point = Geometry.Point

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let no_acquire (_ : Mesh.triangle) = ()
let no_register (_ : Galois.Lock.t) = ()

let test_pointstore () =
  let ps = Mesh.Pointstore.create ~capacity:4 () in
  let ids = Array.init 1000 (fun i -> Mesh.Pointstore.add ps (Point.make (float_of_int i) 0.0)) in
  check_int "count" 1000 (Mesh.Pointstore.count ps);
  Array.iteri (fun i id -> check_int "dense ids" i id) ids;
  Alcotest.(check (float 0.0)) "retrieval" 123.0 (Mesh.Pointstore.get ps 123).Point.x;
  Alcotest.check_raises "bad id" (Invalid_argument "Pointstore.get: id out of range") (fun () ->
      ignore (Mesh.Pointstore.get ps 1000))

let test_pointstore_concurrent () =
  let ps = Mesh.Pointstore.create ~capacity:8 () in
  Parallel.Domain_pool.with_pool 4 (fun pool ->
      Parallel.Domain_pool.parallel_for pool 0 5000 (fun i ->
          ignore (Mesh.Pointstore.add ps (Point.make (float_of_int i) 1.0))));
  check_int "all added" 5000 (Mesh.Pointstore.count ps)

(* Two triangles sharing an edge. *)
let two_triangle_mesh () =
  let m = Mesh.create () in
  let a = Mesh.add_point m (Point.make 0.0 0.0) in
  let b = Mesh.add_point m (Point.make 1.0 0.0) in
  let c = Mesh.add_point m (Point.make 0.0 1.0) in
  (* d well away from (1,1) so the two triangles are not cocircular. *)
  let d = Mesh.add_point m (Point.make 2.0 2.0) in
  let t1 = Mesh.new_triangle m a b c in
  (* CCW: (b, d, c) *)
  let t2 = Mesh.new_triangle m b d c in
  (* shared edge (b, c): opposite a in t1 (slot 0), opposite d in t2
     (slot 1). *)
  t1.Mesh.nbr.(0) <- Some t2;
  t2.Mesh.nbr.(1) <- Some t1;
  (m, t1, t2, (a, b, c, d))

let test_consistency_check () =
  let m, _, _, _ = two_triangle_mesh () in
  match Mesh.check_consistency m with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_consistency_detects_breakage () =
  let m, t1, _, _ = two_triangle_mesh () in
  t1.Mesh.nbr.(0) <- None;
  (* asymmetric link from t2 *)
  match Mesh.check_consistency m with
  | Ok () -> Alcotest.fail "expected inconsistency"
  | Error _ -> ()

let test_facing_index () =
  let m, t1, t2, (a, b, c, _) = two_triangle_mesh () in
  ignore m;
  check_int "t1 faces (b,c) at slot 0" 0 (Mesh.facing_index t1 b c);
  check_int "t2 faces (b,c) at slot 1" 1 (Mesh.facing_index t2 b c);
  Alcotest.check_raises "no such edge"
    (Invalid_argument "Mesh.facing_index: triangles do not share edge {a,b}") (fun () ->
      ignore (Mesh.facing_index t2 a a))

let test_cavity_single_triangle () =
  let m, t1, _, _ = two_triangle_mesh () in
  (* A point near the a-corner: inside t1's circumcircle only. *)
  let p = Point.make 0.05 0.05 in
  let cavity = Mesh.collect_cavity m ~acquire:no_acquire ~start:t1 p in
  check_int "one triangle" 1 (List.length cavity.Mesh.old_tris);
  check_int "three boundary edges" 3 (List.length cavity.Mesh.boundary)

let test_cavity_two_triangles () =
  let m, t1, t2, _ = two_triangle_mesh () in
  ignore t2;
  (* The shared-edge midpoint lies in both circumcircles. *)
  let p = Point.make 0.5 0.5 in
  let cavity = Mesh.collect_cavity m ~acquire:no_acquire ~start:t1 p in
  check_int "both triangles" 2 (List.length cavity.Mesh.old_tris);
  check_int "four boundary edges" 4 (List.length cavity.Mesh.boundary)

let test_cavity_acquires_everything () =
  let m, t1, _, _ = two_triangle_mesh () in
  let acquired = ref [] in
  let acquire tri = acquired := tri.Mesh.tid :: !acquired in
  let _ = Mesh.collect_cavity m ~acquire ~start:t1 (Point.make 0.5 0.5) in
  (* Both triangles are in the cavity; no outers exist beyond border. *)
  check_int "both acquired" 2 (List.length (List.sort_uniq compare !acquired))

let test_retriangulate_consistent () =
  let m, t1, t2, _ = two_triangle_mesh () in
  let q = Mesh.add_point m (Point.make 0.5 0.5) in
  let cavity = Mesh.collect_cavity m ~acquire:no_acquire ~start:t1 (Mesh.point m q) in
  let fresh = Mesh.retriangulate m ~register:no_register cavity q in
  check_int "star of 4 edges" 4 (List.length fresh);
  check_bool "old dead" true (not t1.Mesh.alive && not t2.Mesh.alive);
  check_int "four alive" 4 (Mesh.triangle_count m);
  (match Mesh.check_consistency m with Ok () -> () | Error e -> Alcotest.fail e);
  check_int "no Delaunay violations" 0 (Mesh.delaunay_violations m)

let test_blocked_detection () =
  let m, t1, _, _ = two_triangle_mesh () in
  (* A point beyond the border edge (a,b) (below the square). *)
  match Mesh.collect_cavity m ~acquire:no_acquire ~start:t1 (Point.make 0.3 (-0.4)) with
  | _ -> Alcotest.fail "expected Blocked"
  | exception Mesh.Blocked (_, _, tri) -> check_int "blocked at t1" t1.Mesh.tid tri.Mesh.tid

let test_bounding_triangle_and_strip () =
  let m = Mesh.create () in
  let big, fakes = Mesh.bounding_triangle m in
  check_int "three fakes" 3 (List.length fakes);
  check_bool "alive" true big.Mesh.alive;
  check_int "one triangle" 1 (Mesh.triangle_count m);
  Mesh.strip_vertices m fakes;
  check_int "stripped" 0 (Mesh.triangle_count m)

(* Sequential Bowyer–Watson through the mesh API only: insert points one
   by one, then validate the Delaunay property. This is the substrate
   check that the dt app builds on. *)
let test_incremental_delaunay () =
  let n = 60 in
  let pts = Point.random_unit_square ~seed:77 n in
  let m = Mesh.create () in
  let ids = Array.map (fun p -> Mesh.add_point m p) pts in
  let big, fakes = Mesh.bounding_triangle m in
  let container = ref big in
  Array.iter
    (fun pid ->
      let p = Mesh.point m pid in
      (* point location: walk over alive triangles (slow but simple). *)
      let start =
        if !container.Mesh.alive && Mesh.circumcircle_contains m !container p then !container
        else
          List.find (fun tri -> Mesh.contains_point m tri p) (Mesh.triangles m)
      in
      let cavity = Mesh.collect_cavity m ~acquire:no_acquire ~start p in
      match Mesh.retriangulate m ~register:no_register cavity pid with
      | first :: _ -> container := first
      | [] -> Alcotest.fail "empty retriangulation")
    ids;
  (match Mesh.check_consistency m with Ok () -> () | Error e -> Alcotest.fail e);
  let fake = Hashtbl.create 4 in
  List.iter (fun f -> Hashtbl.add fake f ()) fakes;
  check_int "Delaunay among real triangles" 0
    (Mesh.delaunay_violations ~exclude:(Hashtbl.mem fake) m);
  (* Every real point is a vertex of some triangle. *)
  let seen = Hashtbl.create 64 in
  List.iter
    (fun tri -> Array.iter (fun v -> Hashtbl.replace seen v ()) tri.Mesh.v)
    (Mesh.triangles m);
  Array.iter
    (fun pid -> if not (Hashtbl.mem seen pid) then Alcotest.failf "point %d missing" pid)
    ids

let suite =
  [
    Alcotest.test_case "pointstore basics" `Quick test_pointstore;
    Alcotest.test_case "pointstore concurrent adds" `Quick test_pointstore_concurrent;
    Alcotest.test_case "consistency check accepts valid mesh" `Quick test_consistency_check;
    Alcotest.test_case "consistency check detects breakage" `Quick
      test_consistency_detects_breakage;
    Alcotest.test_case "facing_index" `Quick test_facing_index;
    Alcotest.test_case "cavity of one triangle" `Quick test_cavity_single_triangle;
    Alcotest.test_case "cavity across shared edge" `Quick test_cavity_two_triangles;
    Alcotest.test_case "cavity acquires all touched" `Quick test_cavity_acquires_everything;
    Alcotest.test_case "retriangulate restores invariants" `Quick test_retriangulate_consistent;
    Alcotest.test_case "border blocking detected" `Quick test_blocked_detection;
    Alcotest.test_case "bounding triangle and strip" `Quick test_bounding_triangle_and_strip;
    Alcotest.test_case "sequential incremental Delaunay" `Quick test_incremental_delaunay;
  ]
