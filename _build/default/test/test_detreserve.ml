let check_int = Alcotest.(check int)

let test_cell_min_semantics () =
  let c = Detreserve.Cell.create () in
  Detreserve.Cell.reserve c 10;
  Detreserve.Cell.reserve c 5;
  Detreserve.Cell.reserve c 8;
  Alcotest.(check bool) "min holds" true (Detreserve.Cell.holds c 5);
  Detreserve.Cell.release c 8;
  Alcotest.(check bool) "release by non-holder is no-op" true (Detreserve.Cell.holds c 5);
  Detreserve.Cell.release c 5;
  Alcotest.(check bool) "released" false (Detreserve.Cell.holds c 5)

let test_independent_items_commit_first_round () =
  Parallel.Domain_pool.with_pool 3 (fun pool ->
      let n = 100 in
      let done_ = Array.make n false in
      let stats =
        Detreserve.speculative_for ~granularity:256 ~pool ~n
          ~reserve:(fun _ -> ())
          ~commit:(fun i ->
            done_.(i) <- true;
            true)
          ()
      in
      check_int "one round" 1 stats.Detreserve.rounds;
      check_int "all committed" n stats.Detreserve.commits;
      Alcotest.(check bool) "all done" true (Array.for_all Fun.id done_))

let test_sequential_semantics () =
  (* All items contend on one cell: execution must follow index order
     exactly, like a sequential loop. *)
  Parallel.Domain_pool.with_pool 4 (fun pool ->
      let n = 40 in
      let cell = Detreserve.Cell.create () in
      let log = ref [] in
      let stats =
        Detreserve.speculative_for ~granularity:8 ~pool ~n
          ~reserve:(fun i -> Detreserve.Cell.reserve cell i)
          ~commit:(fun i ->
            if Detreserve.Cell.holds cell i then begin
              log := i :: !log;
              Detreserve.Cell.release cell i;
              true
            end
            else begin
              Detreserve.Cell.release cell i;
              false
            end)
          ()
      in
      check_int "all committed" n stats.Detreserve.commits;
      Alcotest.(check (list int)) "index order" (List.init n Fun.id) (List.rev !log))

let test_granularity_validation () =
  Parallel.Domain_pool.with_pool 1 (fun pool ->
      Alcotest.check_raises "bad granularity"
        (Invalid_argument "Detreserve.speculative_for: granularity must be positive") (fun () ->
          ignore
            (Detreserve.speculative_for ~granularity:0 ~pool ~n:1
               ~reserve:(fun _ -> ())
               ~commit:(fun _ -> true)
               ())))

let test_dynamic_children () =
  (* Each initial item spawns one child generation; totals must match. *)
  Parallel.Domain_pool.with_pool 3 (fun pool ->
      let processed = Atomic.make 0 in
      let stats =
        Detreserve.speculative_for_dynamic ~granularity:16 ~pool
          ~initial:(Array.init 10 (fun i -> (0, i)))
          ~reserve:(fun _ _ -> ())
          ~commit:(fun _ (depth, i) ->
            Atomic.incr processed;
            if depth < 2 then Some [ (depth + 1, i) ] else Some [])
          ()
      in
      check_int "3 generations of 10" 30 (Atomic.get processed);
      check_int "commits" 30 stats.Detreserve.commits)

let test_dynamic_retry () =
  (* An item that fails twice then succeeds. *)
  Parallel.Domain_pool.with_pool 2 (fun pool ->
      let attempts = Array.make 2 0 in
      let stats =
        Detreserve.speculative_for_dynamic ~granularity:4 ~pool
          ~initial:[| "a"; "b" |]
          ~reserve:(fun _ _ -> ())
          ~commit:(fun prio _item ->
            attempts.(prio) <- attempts.(prio) + 1;
            if attempts.(prio) < 3 then None else Some [])
          ()
      in
      check_int "commits" 2 stats.Detreserve.commits;
      check_int "retries" 4 stats.Detreserve.retries)

let suite =
  [
    Alcotest.test_case "cell min semantics" `Quick test_cell_min_semantics;
    Alcotest.test_case "independent items: one round" `Quick
      test_independent_items_commit_first_round;
    Alcotest.test_case "contended items: sequential order" `Quick test_sequential_semantics;
    Alcotest.test_case "granularity validation" `Quick test_granularity_validation;
    Alcotest.test_case "dynamic children" `Quick test_dynamic_children;
    Alcotest.test_case "dynamic retry" `Quick test_dynamic_retry;
  ]
