test/test_apps.ml: Alcotest Apps Array Float Galois Geometry Graphlib Hashtbl List Mesh Parallel Printf
