test/test_graph.ml: Alcotest Array Graphlib List Parallel QCheck QCheck_alcotest
