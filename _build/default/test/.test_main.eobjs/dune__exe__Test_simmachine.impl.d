test/test_simmachine.ml: Alcotest Array Cachesim Galois List Simmachine
