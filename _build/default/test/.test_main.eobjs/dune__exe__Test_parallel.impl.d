test/test_parallel.ml: Alcotest Array Atomic Parallel Printf
