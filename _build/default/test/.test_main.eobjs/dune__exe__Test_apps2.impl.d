test/test_apps2.ml: Alcotest Apps Array Filename Fun Galois Graphlib Hashtbl List Parallel QCheck QCheck_alcotest Sys
