test/test_workset.ml: Alcotest Atomic Galois Parallel Unix
