test/test_figures.ml: Alcotest Figures Lazy List Printexc
