test/test_runtime.ml: Alcotest Array Atomic Fun Galois List Printf
