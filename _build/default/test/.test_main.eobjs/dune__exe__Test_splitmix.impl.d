test/test_splitmix.ml: Alcotest Array Parallel
