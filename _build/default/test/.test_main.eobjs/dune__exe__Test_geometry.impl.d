test/test_geometry.ml: Alcotest Array Geometry QCheck QCheck_alcotest
