test/test_determinism.ml: Alcotest Array Fun Galois Hashtbl List Option Parallel Printf QCheck QCheck_alcotest
