test/test_analysis.ml: Alcotest Analysis Fmt Gen List QCheck QCheck_alcotest String
