test/test_detreserve.ml: Alcotest Array Atomic Detreserve Fun List Parallel
