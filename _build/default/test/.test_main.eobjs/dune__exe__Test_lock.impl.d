test/test_lock.ml: Alcotest Array Galois Gen List Parallel QCheck QCheck_alcotest
