test/test_mesh.ml: Alcotest Array Galois Geometry Hashtbl List Mesh Parallel
