test/test_core_edge.ml: Alcotest Array Fun Galois List Parallel
