examples/reproducible_debugging.mli:
