examples/social_network.ml: Apps Array Fmt Galois Graphlib Hashtbl List Option Sys
