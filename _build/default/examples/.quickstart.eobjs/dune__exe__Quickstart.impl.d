examples/quickstart.ml: Array Fmt Galois
