examples/quickstart.mli:
