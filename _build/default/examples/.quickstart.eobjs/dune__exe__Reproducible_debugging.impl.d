examples/reproducible_debugging.ml: Array Fmt Galois Hashtbl List
