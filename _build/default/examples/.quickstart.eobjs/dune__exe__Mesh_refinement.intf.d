examples/mesh_refinement.mli:
