examples/mesh_refinement.ml: Apps Fmt Galois Geometry List Mesh
