(* Graph analytics on a social-network-shaped (R-MAT) graph:

   - breadth-first search from a seed user ("degrees of separation");
   - a maximal independent set ("mutually non-adjacent moderator set").

   Both are the paper's benchmarks used as a library would use them. An
   optional argv[1] picks the policy, e.g.:

     dune exec examples/social_network.exe -- det:4
     dune exec examples/social_network.exe -- nondet:8 *)

let () =
  let policy =
    match Sys.argv with
    | [| _; p |] -> (
        match Galois.Policy.of_string p with
        | Ok p -> p
        | Error e ->
            prerr_endline e;
            exit 2)
    | _ -> Galois.Policy.det 4
  in
  Fmt.pr "Building an R-MAT graph (2^12 users)...@.";
  let g = Graphlib.Generators.rmat ~seed:7 ~scale:12 ~edge_factor:8 () in
  let sym = Graphlib.Csr.symmetrize g in
  Fmt.pr "  %d users, %d follows (%d symmetric edges)@." (Graphlib.Csr.nodes g)
    (Graphlib.Csr.edges g) (Graphlib.Csr.edges sym);

  Fmt.pr "@.BFS from user 0 under %a:@." Galois.Policy.pp policy;
  let dist, report = Apps.Bfs.galois ~policy sym ~source:0 in
  let histogram = Hashtbl.create 16 in
  Array.iter
    (fun d ->
      if d <> Apps.Bfs.unreached then
        Hashtbl.replace histogram d (1 + Option.value ~default:0 (Hashtbl.find_opt histogram d)))
    dist;
  let levels = List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) histogram []) in
  List.iter (fun (level, count) -> Fmt.pr "  %d hops: %d users@." level count) levels;
  Fmt.pr "  (%d tasks committed, %d aborted)@." report.stats.commits report.stats.aborts;

  Fmt.pr "@.Maximal independent set under %a:@." Galois.Policy.pp policy;
  let in_mis, report = Apps.Mis.galois ~policy sym in
  let size = Array.fold_left (fun a b -> if b then a + 1 else a) 0 in_mis in
  Fmt.pr "  %d mutually non-adjacent users selected (valid=%b)@." size
    (Apps.Mis.is_maximal_independent sym in_mis);
  Fmt.pr "  (%d tasks committed, %d aborted, %d rounds)@." report.stats.commits
    report.stats.aborts report.stats.rounds
