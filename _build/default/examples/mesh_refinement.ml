(* Delaunay mesh refinement, end to end:

   1. generate random points;
   2. Delaunay-triangulate them (a Galois program);
   3. refine all skinny triangles (another Galois program), under the
      deterministic scheduler at several thread counts;
   4. show that the refined meshes are identical — the paper's
      portability property — and pass the geometric validity checks.

   Run with: dune exec examples/mesh_refinement.exe *)

let refine_at threads =
  let points = Geometry.Point.random_unit_square ~seed:99 800 in
  let mesh = Apps.Dt.serial points in
  let before = Mesh.triangle_count mesh in
  let report = Apps.Dmr.galois ~policy:(Galois.Policy.det threads) mesh in
  (mesh, before, report)

let () =
  Fmt.pr "Refining a Delaunay mesh deterministically at 1, 2 and 4 threads...@.";
  let results = List.map (fun t -> (t, refine_at t)) [ 1; 2; 4 ] in
  List.iter
    (fun (t, (mesh, before, report)) ->
      (match Mesh.check_consistency mesh with
      | Ok () -> ()
      | Error e -> failwith e);
      Fmt.pr "  %d thread(s): %d -> %d triangles, %d rounds, refined=%b@." t before
        (Mesh.triangle_count mesh) report.Galois.Runtime.stats.rounds
        (Apps.Dmr.refined Apps.Dmr.default_config mesh))
    results;
  (* Canonical triangle sets must be identical: same mesh, bit for bit,
     regardless of thread count. *)
  let canon (_, (mesh, _, _)) = Apps.Dt.canonical mesh in
  let reference = canon (List.hd results) in
  let all_equal = List.for_all (fun r -> canon r = reference) results in
  Fmt.pr "@.Identical refined meshes across thread counts: %b@." all_equal;
  if not all_equal then exit 1
